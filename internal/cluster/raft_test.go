package cluster

import (
	"fmt"
	"testing"

	"repro/internal/faults"
)

// raftHarness is a bare Raft group on a fabric, with per-node applied
// command logs.
type raftHarness struct {
	f       *Fabric
	rafts   []*Raft
	applied [][]Command
}

func newRaftHarness(t *testing.T, n int, fm faults.Model) *raftHarness {
	t.Helper()
	h := &raftHarness{f: NewFabric(fm, 10), applied: make([][]Command, n)}
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}
	for i := 0; i < n; i++ {
		node := i
		ep := NewEndpoint(h.f, i)
		r := newRaft(ep, peers, func(_ Tick, _ int, cmd Command) {
			h.applied[node] = append(h.applied[node], cmd)
		}, nil)
		h.rafts = append(h.rafts, r)
		r.start(0)
	}
	return h
}

// leader returns the unique live leader, or -1.
func (h *raftHarness) leader(t *testing.T) int {
	t.Helper()
	id := -1
	for i, r := range h.rafts {
		if h.f.Crashed(i) || !r.IsLeader() {
			continue
		}
		if id >= 0 {
			t.Fatalf("two leaders: %s / %s", h.rafts[id].debugString(), r.debugString())
		}
		id = i
	}
	return id
}

// settle runs until a leader exists (bounded).
func (h *raftHarness) settle(t *testing.T) int {
	t.Helper()
	for i := 0; i < 200; i++ {
		h.f.RunUntil(h.f.Now() + electionBase)
		if id := h.leader(t); id >= 0 {
			return id
		}
	}
	for _, r := range h.rafts {
		t.Log(r.debugString())
	}
	t.Fatal("no leader elected")
	return -1
}

func TestRaftElectsExactlyOneLeader(t *testing.T) {
	h := newRaftHarness(t, 5, faults.Model{Seed: 1})
	h.settle(t)
	h.f.RunUntil(h.f.Now() + 10*electionBase)
	if h.leader(t) < 0 {
		t.Fatal("leadership not stable")
	}
	// All live nodes agree on who leads.
	lead := h.leader(t)
	for _, r := range h.rafts {
		if got := r.Leader(); got != lead {
			t.Fatalf("%s: leader hint %d, want %d", r.debugString(), got, lead)
		}
	}
}

func TestRaftReplicatesInOrder(t *testing.T) {
	h := newRaftHarness(t, 5, faults.Model{Seed: 2})
	lead := h.settle(t)
	for i := 1; i <= 4; i++ {
		if _, ok := h.rafts[lead].Propose(h.f.Now(), Command{Kind: "stage", Version: i}); !ok {
			t.Fatalf("leader %d refused proposal", lead)
		}
	}
	h.f.RunUntil(h.f.Now() + 20*electionBase)
	want := fmt.Sprint([]Command{{Kind: "stage", Version: 1}, {Kind: "stage", Version: 2}, {Kind: "stage", Version: 3}, {Kind: "stage", Version: 4}})
	for i, cmds := range h.applied {
		if got := fmt.Sprint(cmds); got != want {
			t.Fatalf("node %d applied %v, want %v", i, got, want)
		}
	}
}

func TestRaftCommittedEntriesSurviveLeaderCrash(t *testing.T) {
	h := newRaftHarness(t, 5, faults.Model{Seed: 3})
	lead := h.settle(t)
	h.rafts[lead].Propose(h.f.Now(), Command{Kind: "stage", Version: 1})
	h.f.RunUntil(h.f.Now() + 20*electionBase) // commit everywhere

	h.f.Crash(lead)
	next := h.settle(t)
	if next == lead {
		t.Fatal("crashed node still leads")
	}
	h.rafts[next].Propose(h.f.Now(), Command{Kind: "activate", Version: 1})
	h.f.RunUntil(h.f.Now() + 20*electionBase)
	for i, cmds := range h.applied {
		if i == lead {
			continue
		}
		if len(cmds) != 2 || cmds[0].Kind != "stage" || cmds[1].Kind != "activate" {
			t.Fatalf("node %d applied %v, want [stage activate]", i, cmds)
		}
	}

	// The crashed ex-leader rejoins and catches up from its kept log.
	h.f.Restart(lead)
	h.rafts[lead].restart(h.f.Now())
	h.f.RunUntil(h.f.Now() + 20*electionBase)
	if cmds := h.applied[lead]; len(cmds) < 3 { // 1 pre-crash + 2 replayed
		t.Fatalf("rejoined node re-applied %v", cmds)
	}
}

func TestRaftMinorityCannotCommit(t *testing.T) {
	h := newRaftHarness(t, 5, faults.Model{Seed: 4})
	lead := h.settle(t)

	// Strand the leader with one follower; the other three are majority.
	var minority, majority []int
	minority = append(minority, lead, (lead+1)%5)
	for i := 0; i < 5; i++ {
		if i != minority[0] && i != minority[1] {
			majority = append(majority, i)
		}
	}
	h.f.Partition(minority, majority)
	h.rafts[lead].Propose(h.f.Now(), Command{Kind: "stage", Version: 9})
	h.f.RunUntil(h.f.Now() + 30*electionBase)
	for i, cmds := range h.applied {
		if len(cmds) != 0 {
			t.Fatalf("node %d applied %v behind a minority partition", i, cmds)
		}
	}

	// After healing, the majority's new leader wins and the stranded
	// proposal is rolled back — overwritten, never applied.
	h.f.Heal()
	h.f.RunUntil(h.f.Now() + 30*electionBase)
	nl := h.settle(t)
	h.rafts[nl].Propose(h.f.Now(), Command{Kind: "stage", Version: 10})
	h.f.RunUntil(h.f.Now() + 30*electionBase)
	for i, cmds := range h.applied {
		for _, c := range cmds {
			if c.Version == 9 {
				t.Fatalf("node %d applied the minority's proposal %v", i, cmds)
			}
		}
		if len(cmds) == 0 || cmds[len(cmds)-1].Version != 10 {
			t.Fatalf("node %d applied %v, want trailing version 10", i, cmds)
		}
	}
}

func TestRaftSurvivesLossyFabric(t *testing.T) {
	h := newRaftHarness(t, 5, faults.Model{
		Seed:        5,
		MsgDropRate: 0.10, MsgDelayRate: 0.20, MsgDupRate: 0.10, MsgReorderRate: 0.05,
	})
	lead := h.settle(t)
	for i := 1; i <= 3; i++ {
		// The leader may change under message loss; re-resolve each time.
		if _, ok := h.rafts[lead].Propose(h.f.Now(), Command{Kind: "stage", Version: i}); !ok {
			lead = h.settle(t)
			h.rafts[lead].Propose(h.f.Now(), Command{Kind: "stage", Version: i})
		}
		h.f.RunUntil(h.f.Now() + 30*electionBase)
		lead = h.settle(t)
	}
	h.f.RunUntil(h.f.Now() + 100*electionBase)
	// Liveness under loss: every node converged to the same applied
	// sequence, and no node applied an entry out of order or twice.
	ref := fmt.Sprint(h.applied[lead])
	for i, cmds := range h.applied {
		seen := map[int]bool{}
		last := 0
		for _, c := range cmds {
			if seen[c.Version] {
				t.Fatalf("node %d applied version %d twice: %v", i, c.Version, cmds)
			}
			seen[c.Version] = true
			if c.Version < last {
				t.Fatalf("node %d applied out of order: %v", i, cmds)
			}
			last = c.Version
		}
		if got := fmt.Sprint(cmds); got != ref {
			t.Fatalf("node %d applied %v, leader applied %v", i, got, ref)
		}
	}
}
