//go:build vecmm && amd64

package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refSaxpy4 is the scalar sequence the assembly must reproduce
// bit-for-bit: four sequential single-precision mul+add pairs per
// element, ascending term order.
func refSaxpy4(orow []float32, a0, a1, a2, a3 float32, b0, b1, b2, b3 []float32) {
	for j := range b0 {
		v := orow[j]
		v += a0 * b0[j]
		v += a1 * b1[j]
		v += a2 * b2[j]
		v += a3 * b3[j]
		orow[j] = v
	}
}

func refSaxpy1(orow []float32, a float32, brow []float32) {
	for j, bv := range brow {
		orow[j] += a * bv
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// TestSaxpyBitIdentical sweeps lengths across and around the 4-wide
// vector stride (including 0 and the scalar tail) and checks the
// assembly kernels against the scalar reference with Float32bits.
func TestSaxpyBitIdentical(t *testing.T) {
	if !VecMatMul {
		t.Fatal("vecmm build without VecMatMul=true")
	}
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 511, 512, 513} {
		a0, a1, a2, a3 := float32(rng.NormFloat64()), float32(rng.NormFloat64()),
			float32(rng.NormFloat64()), float32(rng.NormFloat64())
		b0, b1, b2, b3 := randSlice(rng, n), randSlice(rng, n), randSlice(rng, n), randSlice(rng, n)
		got := randSlice(rng, n)
		want := append([]float32(nil), got...)
		saxpy4(got, a0, a1, a2, a3, b0, b1, b2, b3)
		refSaxpy4(want, a0, a1, a2, a3, b0, b1, b2, b3)
		for j := range want {
			if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
				t.Fatalf("saxpy4 n=%d j=%d: got %x want %x", n, j, math.Float32bits(got[j]), math.Float32bits(want[j]))
			}
		}

		av := float32(rng.NormFloat64())
		got1 := randSlice(rng, n)
		want1 := append([]float32(nil), got1...)
		saxpy1(got1, av, b0)
		refSaxpy1(want1, av, b0)
		for j := range want1 {
			if math.Float32bits(got1[j]) != math.Float32bits(want1[j]) {
				t.Fatalf("saxpy1 n=%d j=%d: got %x want %x", n, j, math.Float32bits(got1[j]), math.Float32bits(want1[j]))
			}
		}
	}
}

// TestSaxpySpecialValues checks that denormals, infinities, NaNs and
// signed zeros flow through the vector lanes exactly as through the
// scalar ops (same payload bits for the NaNs the ops themselves
// produce).
func TestSaxpySpecialValues(t *testing.T) {
	specials := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		math.MaxFloat32, -math.MaxFloat32,
		float32(math.Inf(1)), float32(math.Inf(-1)),
	}
	// One element per special, padded past a vector stride.
	n := len(specials) + 3
	b := make([]float32, n)
	copy(b, specials)
	for _, a := range []float32{2, -0.5, float32(math.Inf(1))} {
		got := make([]float32, n)
		want := make([]float32, n)
		saxpy1(got, a, b)
		refSaxpy1(want, a, b)
		for j := range want {
			if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
				t.Fatalf("a=%v b[%d]=%v: got %x want %x", a, j, b[j], math.Float32bits(got[j]), math.Float32bits(want[j]))
			}
		}
	}
}
