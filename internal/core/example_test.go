package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleCompress compresses a small monotone-structured succession and
// prints its segments.
func ExampleCompress() {
	w := []float64{0.1, 0.2, 0.3, 0.25, 0.2, 0.15}
	c, err := core.Compress(w, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, s := range c.Segments {
		fmt.Printf("M%d: m=%+.3f q=%.3f len=%d\n", i+1, s.M, s.Q, s.Len)
	}
	// Output:
	// M1: m=+0.100 q=0.100 len=3
	// M2: m=-0.050 q=0.250 len=3
}

// ExampleCompressPct shows the paper's percentage-of-amplitude tolerance.
func ExampleCompressPct() {
	w := []float64{0, 1, 0, 1, 0, 1, 0, 1}
	c, err := core.CompressPct(w, 100) // delta = the full amplitude
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("segments:", len(c.Segments))
	// Output:
	// segments: 1
}

// ExampleDecompressionUnit drives the cycle-level hardware model.
func ExampleDecompressionUnit() {
	var u core.DecompressionUnit
	if err := u.Load(core.Segment{M: 0.5, Q: 1, Len: 3}); err != nil {
		fmt.Println(err)
		return
	}
	for {
		w, valid := u.Tick()
		if !valid {
			break
		}
		fmt.Printf("%.1f ", w)
		if u.State() == core.StateIdle {
			break
		}
	}
	fmt.Println()
	// Output:
	// 1.0 1.5 2.0
}

// ExampleSegmentBounds partitions a rise-then-fall under the strict
// criterion.
func ExampleSegmentBounds() {
	runs := core.SegmentBounds([]float64{0, 1, 0.5, 0}, 0)
	for _, r := range runs {
		fmt.Printf("[%d,%d) %s\n", r.Start, r.Start+r.Len, r.Dir)
	}
	// Output:
	// [0,2) up
	// [2,4) down
}

// ExampleWeightedCR reproduces the Table II weighted-CR accounting.
func ExampleWeightedCR() {
	// A layer holding 80% of the parameters compressed 4x.
	fmt.Printf("%.2f\n", core.WeightedCR(4, 80, 100))
	// Output:
	// 2.50
}
