package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestCalibrate(t *testing.T) {
	p, err := Calibrate([]float64{-1, 0, 1.55})
	if err != nil {
		t.Fatal(err)
	}
	if p.Scale <= 0 {
		t.Errorf("scale = %v", p.Scale)
	}
	if _, err := Calibrate(nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := Calibrate([]float64{math.NaN()}); err == nil {
		t.Error("NaN should error")
	}
	if _, err := Calibrate([]float64{math.Inf(1)}); err == nil {
		t.Error("Inf should error")
	}
	// Constant tensor degenerates gracefully.
	p, err = Calibrate([]float64{0, 0, 0})
	if err != nil || p.Scale != 1 {
		t.Errorf("constant calibration = %+v, %v", p, err)
	}
}

func TestQuantizeRoundTripBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := make([]float64, 5000)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.05
	}
	q, err := Quantize(w)
	if err != nil {
		t.Fatal(err)
	}
	deq := q.Dequantize()
	maxErr := q.P.MaxQuantError()
	for i := range w {
		if e := math.Abs(deq[i] - w[i]); e > maxErr+1e-12 {
			t.Fatalf("value %d: error %v exceeds scale/2 = %v", i, e, maxErr)
		}
	}
}

func TestQuantizeRoundTripProperty(t *testing.T) {
	f := func(raw []float64) bool {
		w := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				w = append(w, v)
			}
		}
		if len(w) == 0 {
			return true
		}
		q, err := Quantize(w)
		if err != nil {
			return false
		}
		deq := q.Dequantize()
		for i := range w {
			if math.Abs(deq[i]-w[i]) > q.P.MaxQuantError()*1.01+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZeroIsRepresentable(t *testing.T) {
	// TFLite requires exact zero representation; all-positive tensors
	// must still include 0 in the range.
	q, err := Quantize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	zeroCode := q.P.quantizeOne(0)
	if got := q.P.dequantizeOne(zeroCode); math.Abs(got) > 1e-12 {
		t.Errorf("zero dequantizes to %v", got)
	}
}

func TestStreamAndFromStream(t *testing.T) {
	q, err := Quantize([]float64{-0.5, 0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	stream := q.Stream()
	back, err := FromStream(stream, q.P)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q.Vals {
		if back.Vals[i] != q.Vals[i] {
			t.Errorf("code %d: %d != %d", i, back.Vals[i], q.Vals[i])
		}
	}
	// Out-of-range codes clamp.
	clamped, err := FromStream([]float64{-500, 500, 0.4}, q.P)
	if err != nil {
		t.Fatal(err)
	}
	if clamped.Vals[0] != -128 || clamped.Vals[1] != 127 || clamped.Vals[2] != 0 {
		t.Errorf("clamping = %v", clamped.Vals)
	}
	if _, err := FromStream(nil, q.P); err == nil {
		t.Error("empty stream should error")
	}
}

func TestBytes(t *testing.T) {
	q, _ := Quantize(make([]float64, 100))
	if q.Bytes() != 108 {
		t.Errorf("Bytes = %d", q.Bytes())
	}
}

// TestCompressionOnTopOfQuantization is the Table III pipeline: the core
// compression applied to the int8 code stream still compresses, and the
// composed reconstruction error stays bounded by quantization plus the
// compression's delta-scale error.
func TestCompressionOnTopOfQuantization(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := make([]float64, 20000)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.02
	}
	q, err := Quantize(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, pct := range []float64{0, 10, 20} {
		c, err := core.CompressPct(q.Stream(), pct)
		if err != nil {
			t.Fatal(err)
		}
		if cr := c.CompressionRatio(core.DefaultStorage); pct > 0 && cr <= 1 {
			t.Errorf("delta %v%%: CR %v on int8 codes", pct, cr)
		}
		approx, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		back, err := FromStream(approx, q.P)
		if err != nil {
			t.Fatal(err)
		}
		deq := back.Dequantize()
		var mse float64
		for i := range w {
			d := deq[i] - w[i]
			mse += d * d
		}
		mse /= float64(len(w))
		// The composed error grows with delta but must stay finite and in
		// the scale of the data.
		if mse > 0.02 {
			t.Errorf("delta %v%%: composed MSE %v too large", pct, mse)
		}
	}
}

// TestQuantizedCompressionRatioGrows mirrors Table III: weighted CR grows
// with delta even when the input is already quantized.
func TestQuantizedCompressionRatioGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := make([]float64, 30000)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	q, _ := Quantize(w)
	prev := 0.0
	for _, pct := range []float64{0, 5, 10, 15, 20} {
		c, err := core.CompressPct(q.Stream(), pct)
		if err != nil {
			t.Fatal(err)
		}
		cr := c.CompressionRatio(core.DefaultStorage)
		if cr < prev {
			t.Errorf("CR fell at delta %v%%: %v < %v", pct, cr, prev)
		}
		prev = cr
	}
	if prev < 2 {
		t.Errorf("CR at delta 20%% on int8 codes = %v, expected growth", prev)
	}
}
