package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// DecodeModel is the cycle/energy cost model of a PE's decompression
// unit for one codec. It replaces the one-size-fits-all FSM costing
// (every codec charged the same weights-per-cycle throughput) with the
// two rates a streaming decoder actually has:
//
//   - a front end that ingests the compressed stream, serialized at
//     CyclesPerStreamWord cycles per 64-bit stream word — this is where
//     entropy codecs pay for their bit-serial symbol boundaries, and
//   - a back end that regenerates weights, WeightsPerLaneCycle weights
//     per decompression lane per cycle — this is where wide, regular
//     codecs (run-length, plane unpacking, the paper's segment
//     accumulators) run at full datapath width.
//
// A tile's decode time is the larger of the two (the stages pipeline
// against each other within a tile), so codec choice changes *when*
// bytes become usable, not just how many there are: a Huffman stream
// half the size of an RLE stream can still finish decoding later.
//
// Energy is charged per stream bit through the front end plus per
// regenerated weight through the back end, both in picojoules.
type DecodeModel struct {
	// CyclesPerStreamWord is the front-end serialization cost per
	// 64-bit word of compressed stream. 1 means the unit ingests a full
	// word per cycle; 8 means one byte per cycle (a serial entropy
	// decoder walking symbol boundaries).
	CyclesPerStreamWord float64
	// WeightsPerLaneCycle is the back-end regeneration throughput per
	// decompression lane per cycle. The platform's lane count
	// (Config.DecompUnits in internal/accel) multiplies this.
	WeightsPerLaneCycle float64
	// StreamBitPJ is the dynamic energy per compressed stream bit
	// ingested by the front end.
	StreamBitPJ float64
	// WeightPJ is the dynamic energy per regenerated weight (table
	// lookups, accumulator adds, dequantization).
	WeightPJ float64
}

// Validate checks the model's rates are positive and finite.
func (m DecodeModel) Validate() error {
	switch {
	case !(m.CyclesPerStreamWord > 0) || math.IsInf(m.CyclesPerStreamWord, 0):
		return fmt.Errorf("core: decode model CyclesPerStreamWord %v out of range", m.CyclesPerStreamWord)
	case !(m.WeightsPerLaneCycle > 0) || math.IsInf(m.WeightsPerLaneCycle, 0):
		return fmt.Errorf("core: decode model WeightsPerLaneCycle %v out of range", m.WeightsPerLaneCycle)
	case m.StreamBitPJ < 0 || m.WeightPJ < 0:
		return fmt.Errorf("core: decode model negative energy coefficients")
	}
	return nil
}

// TileCycles returns the decompression-unit busy cycles to turn
// streamBits of compressed stream into weights, with lanes parallel
// regeneration lanes: the max of the front-end ingest time and the
// back-end regeneration time, never below one cycle for non-empty
// tiles.
func (m DecodeModel) TileCycles(streamBits, weights uint64, lanes int) uint64 {
	if streamBits == 0 && weights == 0 {
		return 0
	}
	if lanes < 1 {
		lanes = 1
	}
	words := (streamBits + 63) / 64
	front := uint64(math.Ceil(float64(words) * m.CyclesPerStreamWord))
	back := uint64(math.Ceil(float64(weights) / (m.WeightsPerLaneCycle * float64(lanes))))
	c := front
	if back > c {
		c = back
	}
	if c < 1 {
		c = 1
	}
	return c
}

// TileEnergyPJ returns the dynamic decode energy of a tile in
// picojoules: stream bits through the front end plus regenerated
// weights through the back end.
func (m DecodeModel) TileEnergyPJ(streamBits, weights uint64) float64 {
	return float64(streamBits)*m.StreamBitPJ + float64(weights)*m.WeightPJ
}

// DefaultDecodeModel matches the legacy FSM assumption the simulator
// used for every codec before per-codec models existed: one weight per
// lane per cycle, stream ingest at a full word per cycle, and the
// 45 nm per-weight accumulator energy (energy.Params.DecompressPJ).
// It is the fallback for codecs that register no model of their own.
var DefaultDecodeModel = DecodeModel{
	CyclesPerStreamWord: 1,
	WeightsPerLaneCycle: 1,
	StreamBitPJ:         0,
	WeightPJ:            0.15,
}

var (
	decodeMu       sync.RWMutex
	decodeRegistry = map[string]DecodeModel{}
)

// RegisterDecodeModel adds a codec's decode model to the process-wide
// registry, keyed by codec name. Registering an empty name, an invalid
// model or a duplicate is an error.
func RegisterDecodeModel(codec string, m DecodeModel) error {
	if codec == "" {
		return errors.New("core: registering decode model without a codec name")
	}
	if err := m.Validate(); err != nil {
		return err
	}
	decodeMu.Lock()
	defer decodeMu.Unlock()
	if _, dup := decodeRegistry[codec]; dup {
		return fmt.Errorf("core: decode model for %q already registered", codec)
	}
	decodeRegistry[codec] = m
	return nil
}

// MustRegisterDecodeModel is RegisterDecodeModel that panics on error;
// for use from package init functions.
func MustRegisterDecodeModel(codec string, m DecodeModel) {
	if err := RegisterDecodeModel(codec, m); err != nil {
		panic(err)
	}
}

// LookupDecodeModel resolves a codec's decode model, falling back to
// DefaultDecodeModel for unregistered (or empty) names so the
// simulator never fails on a codec that predates per-codec models.
func LookupDecodeModel(codec string) DecodeModel {
	decodeMu.RLock()
	defer decodeMu.RUnlock()
	if m, ok := decodeRegistry[codec]; ok {
		return m
	}
	return DefaultDecodeModel
}

// DecodeModelNames returns the codec names with registered decode
// models, sorted.
func DecodeModelNames() []string {
	decodeMu.RLock()
	defer decodeMu.RUnlock()
	names := make([]string, 0, len(decodeRegistry))
	for n := range decodeRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	// The paper's segment codec (Fig. 6): fixed 16-byte records parsed
	// at stream rate, one accumulator add per regenerated weight, so
	// both ends run at full width.
	MustRegisterDecodeModel(SegmentCodecName, DecodeModel{
		CyclesPerStreamWord: 1,
		WeightsPerLaneCycle: 1,
		StreamBitPJ:         0.01,
		WeightPJ:            0.15,
	})
}
