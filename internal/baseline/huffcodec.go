package baseline

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Materialized Huffman stream layout (little endian):
//
//	count   uint32   number of original symbols
//	lengths [256]byte canonical code length per byte symbol (0 = unused)
//	payload bit-packed canonical codes, MSB first within each byte
//
// The codec exists so the baseline is testable end to end (and fuzzable
// against corrupted streams); the compression-ratio accounting used by
// the experiments is HuffmanCompressedBits, which charges the same
// 256-byte table.

const huffHeaderBytes = 4 + 256

var errInvalidHuffman = errInvalid("baseline: invalid Huffman stream")

// canonicalCodes assigns canonical codes (sorted by length, then symbol)
// to the given code lengths. Returns the per-symbol code values and the
// maximum length.
func canonicalCodes(lengths *[256]int) (codes [256]uint64, maxLen int) {
	type sl struct{ sym, l int }
	var order []sl
	for s, l := range lengths {
		if l > 0 {
			order = append(order, sl{s, l})
			if l > maxLen {
				maxLen = l
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].l != order[j].l {
			return order[i].l < order[j].l
		}
		return order[i].sym < order[j].sym
	})
	code := uint64(0)
	prev := 0
	for _, e := range order {
		code <<= uint(e.l - prev)
		prev = e.l
		codes[e.sym] = code
		code++
	}
	return codes, maxLen
}

// HuffmanEncode materializes the Huffman coding of data as a
// self-describing stream decodable by HuffmanDecode.
func HuffmanEncode(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	if uint64(len(data)) > 1<<32-1 {
		return nil, fmt.Errorf("baseline: input of %d bytes exceeds the 32-bit header", len(data))
	}
	lengths, err := HuffmanCodeLengths(data)
	if err != nil {
		return nil, err
	}
	codes, _ := canonicalCodes(&lengths)
	out := make([]byte, huffHeaderBytes, huffHeaderBytes+len(data)/2)
	binary.LittleEndian.PutUint32(out[:4], uint32(len(data)))
	for s, l := range lengths {
		out[4+s] = byte(l)
	}
	var acc uint64
	var nbits int
	for _, b := range data {
		l := lengths[b]
		acc = acc<<uint(l) | codes[b]
		nbits += l
		for nbits >= 8 {
			nbits -= 8
			out = append(out, byte(acc>>uint(nbits)))
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc<<uint(8-nbits)))
	}
	return out, nil
}

// HuffmanDecode inverts HuffmanEncode. Corrupted streams yield an error,
// never a panic, and the output allocation is bounded by the payload
// size (every symbol costs at least one payload bit).
func HuffmanDecode(enc []byte) ([]byte, error) {
	if len(enc) < huffHeaderBytes {
		return nil, errInvalidHuffman
	}
	count := int(binary.LittleEndian.Uint32(enc[:4]))
	payload := enc[huffHeaderBytes:]
	// Allocation cap: a corrupt count cannot exceed one symbol per
	// payload bit, so the output is at most 8x the input size.
	if count > 8*len(payload) {
		return nil, errInvalidHuffman
	}
	var lengths [256]int
	used, kraft := 0, uint64(0)
	const kraftOne = 1 << 62 // sum of 2^(62-l) for a complete code
	oversub := false
	maxLen := 0
	for s := 0; s < 256; s++ {
		l := int(enc[4+s])
		if l > 62 {
			return nil, errInvalidHuffman
		}
		lengths[s] = l
		if l > 0 {
			used++
			// Checked per addition: kraft stays <= kraftOne, so one more
			// term (at most 2^61) cannot overflow uint64.
			if kraft += 1 << uint(62-l); kraft > kraftOne {
				oversub = true
				kraft = kraftOne
			}
			if l > maxLen {
				maxLen = l
			}
		}
	}
	if count == 0 {
		return []byte{}, nil
	}
	switch {
	case used == 0:
		return nil, errInvalidHuffman
	case used == 1:
		// Degenerate single-symbol table (one bit per symbol by
		// convention); over-long Kraft sums are fine here.
	case oversub:
		return nil, errInvalidHuffman // over-subscribed code, ambiguous
	}

	// Canonical decode tables: symbols sorted by (length, symbol), the
	// first code and first symbol index of every length.
	var numl [63]int
	for _, l := range lengths {
		if l > 0 {
			numl[l]++
		}
	}
	syms := make([]byte, 0, used)
	for l := 1; l <= maxLen; l++ {
		for s := 0; s < 256; s++ {
			if lengths[s] == l {
				syms = append(syms, byte(s))
			}
		}
	}
	var firstCode [63]uint64
	var firstSym [63]int
	code, symIdx := uint64(0), 0
	for l := 1; l <= maxLen; l++ {
		code <<= 1
		firstCode[l] = code
		firstSym[l] = symIdx
		code += uint64(numl[l])
		symIdx += numl[l]
	}

	out := make([]byte, 0, count)
	var acc uint64
	l := 0
	for _, b := range payload {
		for bit := 7; bit >= 0; bit-- {
			acc = acc<<1 | uint64(b>>uint(bit)&1)
			l++
			if l > maxLen {
				return nil, errInvalidHuffman
			}
			if idx := acc - firstCode[l]; numl[l] > 0 && acc >= firstCode[l] && idx < uint64(numl[l]) {
				out = append(out, syms[firstSym[l]+int(idx)])
				if len(out) == count {
					return out, nil // remaining bits are padding
				}
				acc, l = 0, 0
			}
		}
	}
	return nil, errInvalidHuffman // payload exhausted before count symbols
}
