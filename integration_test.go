package repro

import (
	"math"
	"testing"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/entropy"
	"repro/internal/models"
	"repro/internal/planner"
	"repro/internal/quant"
	"repro/internal/train"
)

// TestEndToEndHeadlineClaim exercises the paper's headline pipeline on a
// genuinely trained LeNet-5: compression reduces simulated inference
// latency and energy monotonically with delta while accuracy degrades
// gracefully at small delta.
func TestEndToEndHeadlineClaim(t *testing.T) {
	const seed = 99
	m, err := models.LeNet5(seed)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := dataset.Digits(800, seed)
	if err != nil {
		t.Fatal(err)
	}
	trainSet, testSet, err := dataset.Split(samples, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := train.NewSGD(0.05, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := train.NewTrainer(m.Graph, opt, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Fit(trainSet, 5); err != nil {
		t.Fatal(err)
	}
	baseAcc, err := train.Accuracy(m.Graph, testSet)
	if err != nil {
		t.Fatal(err)
	}
	if baseAcc < 0.7 {
		t.Fatalf("trained accuracy = %v, training substrate broken", baseAcc)
	}

	sim, err := accel.NewSimulator(accel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseSpecs, err := accel.SpecsFromModel(m, nil, core.DefaultStorage)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.SimulateModel(m.Name, baseSpecs)
	if err != nil {
		t.Fatal(err)
	}

	orig, err := m.SelectedWeights()
	if err != nil {
		t.Fatal(err)
	}
	prevCycles := base.Cycles
	prevEnergy := base.Energy.Total()
	for _, pct := range []float64{0, 5, 10} {
		c, err := core.CompressPct(orig, pct)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetSelectedWeights(approx); err != nil {
			t.Fatal(err)
		}
		acc, err := train.Accuracy(m.Graph, testSet)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := accel.SpecsFromModel(m, map[string]*core.Compressed{m.SelectedLayer: c}, core.DefaultStorage)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.SimulateModel(m.Name, specs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles >= prevCycles {
			t.Errorf("delta %v%%: cycles %d did not drop below %d", pct, res.Cycles, prevCycles)
		}
		if res.Energy.Total() >= prevEnergy {
			t.Errorf("delta %v%%: energy did not drop", pct)
		}
		if pct <= 5 && acc < baseAcc-0.1 {
			t.Errorf("delta %v%%: accuracy fell %v -> %v, more than graceful", pct, baseAcc, acc)
		}
		prevCycles, prevEnergy = res.Cycles, res.Energy.Total()
	}
	if err := m.SetSelectedWeights(orig); err != nil {
		t.Fatal(err)
	}
}

// TestProposedBeatsEntropyCodersOnWeights pits the paper's technique
// against the lossless baselines on the same calibrated weight stream —
// the quantitative Fig. 3 argument.
func TestProposedBeatsEntropyCodersOnWeights(t *testing.T) {
	m, err := models.LeNet5(3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.SelectedWeights()
	if err != nil {
		t.Fatal(err)
	}
	data := entropy.Float32Bytes(w)
	huff, err := baseline.HuffmanRatio(data)
	if err != nil {
		t.Fatal(err)
	}
	rle, err := baseline.RLERatio(data)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.CompressPct(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	proposed := c.CompressionRatio(core.DefaultStorage)
	if huff > 1.3 {
		t.Errorf("Huffman ratio on weights = %v, should be near 1", huff)
	}
	if rle > 1.0 {
		t.Errorf("RLE ratio on weights = %v, should expand", rle)
	}
	if proposed < huff || proposed < rle {
		t.Errorf("proposed %v does not beat baselines (huffman %v, rle %v)", proposed, huff, rle)
	}
}

// TestQuantizeThenCompressPipeline runs the Table III composition on the
// untrained LeNet and checks the storage accounting composes.
func TestQuantizeThenCompressPipeline(t *testing.T) {
	m, err := models.LeNet5(5)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.SelectedWeights()
	if err != nil {
		t.Fatal(err)
	}
	q, err := quant.Quantize(w)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.CompressPct(q.Stream(), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Combined storage: int8 codes compressed under the 8-bit-coefficient
	// layout must beat int8 alone.
	int8Bits := 8 * len(w)
	combined := c.CompressedBits(core.QuantizedStorage)
	if combined >= int8Bits {
		t.Errorf("combined %d bits not below int8-only %d bits", combined, int8Bits)
	}
	// And the reconstruction error stays bounded: quantization error plus
	// delta-scale compression error.
	approx, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	back, err := quant.FromStream(approx, q.P)
	if err != nil {
		t.Fatal(err)
	}
	deq := back.Dequantize()
	var worst float64
	for i := range w {
		if e := math.Abs(deq[i] - w[i]); e > worst {
			worst = e
		}
	}
	amp := 0.0
	for _, v := range w {
		if math.Abs(v) > amp {
			amp = math.Abs(v)
		}
	}
	if worst > amp {
		t.Errorf("composed max error %v exceeds the weight amplitude %v", worst, amp)
	}
}

// TestPlannerIntegration runs the future-work planner on a trained model
// and verifies the model ends in the planned state.
func TestPlannerIntegration(t *testing.T) {
	m, err := models.LeNet5(11)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := dataset.Digits(500, 11)
	if err != nil {
		t.Fatal(err)
	}
	trainSet, testSet, err := dataset.Split(samples, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := train.NewSGD(0.05, 0.9)
	tr, err := train.NewTrainer(m.Graph, opt, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Fit(trainSet, 3); err != nil {
		t.Fatal(err)
	}
	accFn := func() (float64, error) { return train.Accuracy(m.Graph, testSet) }
	opts := planner.DefaultOptions()
	opts.MaxEvals = 150
	opts.Layers = []string{"dense_1", "dense_2"}
	plan, err := planner.Greedy(m, accFn, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.WeightedCR <= 1 {
		t.Errorf("plan WCR = %v", plan.WeightedCR)
	}
	if plan.Accuracy < plan.BaseAccuracy-opts.MaxAccuracyDrop-1e-9 {
		t.Errorf("budget violated: %v vs base %v", plan.Accuracy, plan.BaseAccuracy)
	}
}

// TestAccelExtrapolationConsistency verifies the steady-state
// extrapolation: simulating more rounds cycle-accurately must give
// near-identical totals.
func TestAccelExtrapolationConsistency(t *testing.T) {
	spec := accel.LayerSpec{
		Name: "fc", Kind: "FC",
		MACs: 8_000_000, WeightBytes: 32_000_000, InputBytes: 8192, OutputBytes: 8192,
	}
	var cycles [2]uint64
	for i, rounds := range []int{4, 16} {
		cfg := accel.DefaultConfig()
		cfg.MaxSimRounds = rounds
		sim, err := accel.NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := sim.SimulateLayer(spec)
		if err != nil {
			t.Fatal(err)
		}
		cycles[i] = lr.Cycles
	}
	ratio := float64(cycles[0]) / float64(cycles[1])
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("extrapolation inconsistent: 4-round %d vs 16-round %d (ratio %.3f)",
			cycles[0], cycles[1], ratio)
	}
}
