// Package cluster lifts the single-chip simulation stack to a
// fault-tolerant accelerator cluster: N simulated accelerator nodes
// (each wrapping an accel.Simulator and a codec plan) serve sharded
// inference requests behind an unreliable RPC fabric, while a
// Raft-style replicated scheduler rolls out new compressed weight
// versions as atomic epochs — an epoch either commits on a quorum or
// rolls back, and a leader killed mid-rollout never leaves replicas
// serving mixed versions.
//
// Everything runs on a deterministic discrete-event fabric with a
// virtual clock: messages, timers, crashes, partitions, and the fault
// schedule (drop/delay/duplicate/reorder, driven by internal/faults'
// seed-hash contract) are totally ordered by (tick, sequence) and
// executed by a single goroutine per cluster instance. Two runs with
// the same Spec are therefore byte-identical — at any worker count and
// under the race detector — and scenario-level parallelism (sweeps)
// composes on top through internal/parallel exactly like the rest of
// the experiment engine.
package cluster

import (
	"container/heap"
	"fmt"

	"repro/internal/faults"
)

// Tick is the fabric's virtual time unit. The accelerator simulators
// report cycles; Spec.CyclesPerTick converts them (default: 1000 cycles
// per tick, i.e. 1 µs ticks for the paper's 1 GHz platform).
type Tick = uint64

// Message is one transmission on the fabric. Retransmissions are fresh
// transmissions with fresh IDs, so the fault model decides their fate
// independently (the same contract as NoC retransmit attempts).
type Message struct {
	ID      uint64 // fabric-unique transmission id
	From    int
	To      int
	Method  string // registered handler name, e.g. "Raft.AppendEntries"
	CallID  uint64 // correlates a reply with its pending call
	IsReply bool
	Payload any
	Err     string // remote handler error, carried on replies
}

// event is one scheduled action: a message delivery or a timer firing.
// The (at, seq) pair totally orders the run.
type event struct {
	at  Tick
	seq uint64
	fn  func(now Tick)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// FabricStats counts what the fabric did to the traffic it carried.
type FabricStats struct {
	Sent        uint64 // transmissions requested
	Delivered   uint64 // handler invocations (duplicates count twice)
	DroppedLink uint64 // lost to the fault model's drop decision
	Unreachable uint64 // lost to a crash, partition, or downed link
	Delayed     uint64 // held beyond the nominal latency
	Duplicated  uint64 // delivered twice
	Reordered   uint64 // deliberately delivered out of FIFO order
}

// Fabric is the deterministic in-process message fabric: a virtual
// clock, an event calendar, per-node crash state, partition groups and
// per-link disconnect controls, and the message-level fault model.
//
// A Fabric and everything registered on it form one single-threaded
// simulation: all callbacks run on the goroutine driving Step/RunUntil.
// It is not safe for concurrent use — run one Fabric per goroutine.
type Fabric struct {
	Faults    faults.Model
	LinkDelay Tick // nominal one-way message latency

	now      Tick
	seq      uint64 // event/message sequence; also the fault-decision key
	calendar eventHeap
	crashed  map[int]bool
	group    map[int]int     // partition group per endpoint (default 0)
	downLink map[[2]int]bool // unidirectional disconnected links
	eps      map[int]*Endpoint
	stats    FabricStats
}

// NewFabric builds a fabric with the given fault model and nominal
// one-way link delay (0 selects 50 ticks).
func NewFabric(fm faults.Model, linkDelay Tick) *Fabric {
	if linkDelay == 0 {
		linkDelay = 50
	}
	return &Fabric{
		Faults:    fm,
		LinkDelay: linkDelay,
		crashed:   map[int]bool{},
		group:     map[int]int{},
		downLink:  map[[2]int]bool{},
		eps:       map[int]*Endpoint{},
	}
}

// Now returns the virtual clock.
func (f *Fabric) Now() Tick { return f.now }

// Stats returns the fabric's traffic counters.
func (f *Fabric) Stats() FabricStats { return f.stats }

// After schedules fn to run d ticks from now. Timers are not subject to
// message faults; they model local clocks.
func (f *Fabric) After(d Tick, fn func(now Tick)) {
	f.seq++
	heap.Push(&f.calendar, &event{at: f.now + d, seq: f.seq, fn: fn})
}

// Step pops and executes the next event; it reports false when the
// calendar is empty.
func (f *Fabric) Step() bool {
	if len(f.calendar) == 0 {
		return false
	}
	e := heap.Pop(&f.calendar).(*event)
	if e.at > f.now {
		f.now = e.at
	}
	e.fn(f.now)
	return true
}

// RunUntil executes events until the clock would pass t (events at
// exactly t still run) or the calendar empties.
func (f *Fabric) RunUntil(t Tick) {
	for len(f.calendar) > 0 && f.calendar[0].at <= t {
		f.Step()
	}
	if f.now < t {
		f.now = t
	}
}

// Crash marks an endpoint dead: pending and future deliveries to or
// from it are discarded, and its timers are suppressed via Alive checks
// in the endpoint callbacks.
func (f *Fabric) Crash(id int) { f.crashed[id] = true }

// Restart revives a crashed endpoint. State the endpoint kept across
// the crash (its "disk") is up to the endpoint.
func (f *Fabric) Restart(id int) { delete(f.crashed, id) }

// Crashed reports whether an endpoint is currently crashed.
func (f *Fabric) Crashed(id int) bool { return f.crashed[id] }

// Partition splits the endpoints into isolated groups: only endpoints
// in the same group can exchange messages. Endpoints not listed keep
// group 0. Calling Partition replaces any previous partition.
func (f *Fabric) Partition(groups ...[]int) {
	f.group = map[int]int{}
	for gi, g := range groups {
		for _, id := range g {
			f.group[id] = gi
		}
	}
}

// Heal removes all partitions (downed links are separate; see SetLink).
func (f *Fabric) Heal() { f.group = map[int]int{} }

// SetLink connects (up) or disconnects (down) the unidirectional link
// from a to b, independent of partitions.
func (f *Fabric) SetLink(a, b int, up bool) {
	if up {
		delete(f.downLink, [2]int{a, b})
	} else {
		f.downLink[[2]int{a, b}] = true
	}
}

// reachable reports whether a message from a to b would be delivered
// right now: both ends alive, same partition group, link up.
func (f *Fabric) reachable(a, b int) bool {
	return !f.crashed[a] && !f.crashed[b] && f.group[a] == f.group[b] && !f.downLink[[2]int{a, b}]
}

// send applies the fault model to one transmission and schedules its
// delivery (or doesn't). Reachability is checked at delivery time, so a
// message in flight across a partition boundary is lost, and one sent
// just before a heal arrives.
func (f *Fabric) send(msg Message) {
	f.seq++
	msg.ID = f.seq
	f.stats.Sent++

	if f.Faults.MsgDrop(msg.ID, msg.From, msg.To) {
		f.stats.DroppedLink++
		return
	}
	delay := f.LinkDelay
	if extra := f.Faults.MsgDelay(msg.ID, msg.From, msg.To); extra > 0 {
		f.stats.Delayed++
		delay += extra
	}
	if f.Faults.MsgReorder(msg.ID, msg.From, msg.To) {
		// A reorder is a bounded deterministic extra hold: the message
		// lands behind transmissions sent up to 3 link delays later.
		f.stats.Reordered++
		delay += 3 * f.LinkDelay
	}
	f.deliverAfter(delay, msg)
	if f.Faults.MsgDuplicate(msg.ID, msg.From, msg.To) {
		f.stats.Duplicated++
		f.deliverAfter(delay+f.LinkDelay/2+1, msg)
	}
}

// deliverAfter schedules one delivery attempt of msg.
func (f *Fabric) deliverAfter(d Tick, msg Message) {
	f.After(d, func(now Tick) {
		if !f.reachable(msg.From, msg.To) {
			f.stats.Unreachable++
			return
		}
		ep := f.eps[msg.To]
		if ep == nil {
			f.stats.Unreachable++
			return
		}
		f.stats.Delivered++
		ep.deliver(now, msg)
	})
}

// register attaches an endpoint; ids must be unique.
func (f *Fabric) register(ep *Endpoint) {
	if _, dup := f.eps[ep.id]; dup {
		panic(fmt.Sprintf("cluster: duplicate endpoint id %d", ep.id))
	}
	f.eps[ep.id] = ep
}
