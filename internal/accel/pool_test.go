package accel

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
)

// TestScratchPoolReuseDeterministic pins the layer-scratch pool
// contract: one Simulator reused for many SimulateModel runs at varying
// worker counts must produce results deeply equal to its first run.
// Dirty pooled networks and per-PE/per-MI state from earlier layers and
// earlier runs must never leak into a later layer; under -race this
// also checks that concurrent layer simulations share the pool safely.
func TestScratchPoolReuseDeterministic(t *testing.T) {
	m, err := models.LeNet5(1)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := SpecsFromModel(m, nil, core.DefaultStorage)
	if err != nil {
		t.Fatal(err)
	}
	sim := defaultSim(t)
	base, err := sim.SimulateModel(m.Name, specs)
	if err != nil {
		t.Fatal(err)
	}
	// Same simulator, warm pool, every worker count twice over.
	for _, n := range []int{1, 2, 4, 64, 1, 2, 4, 64} {
		sim.SetWorkers(n)
		got, err := sim.SimulateModel(m.Name, specs)
		if err != nil {
			t.Fatalf("workers %d: %v", n, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers %d: warm-pool result differs from first run", n)
		}
	}
}
